package ids

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDigitRoundTrip(t *testing.T) {
	id := MustHex("0123456789abcdef0123456789abcdef")
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0xa, 0xb, 0xc, 0xd, 0xe, 0xf}
	for i := 0; i < Digits; i++ {
		if got := id.Digit(i); got != want[i%16] {
			t.Fatalf("digit %d = %x, want %x", i, got, want[i%16])
		}
	}
}

func TestWithDigit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		id := Random(rng)
		pos := rng.Intn(Digits)
		d := rng.Intn(Radix)
		out := id.WithDigit(pos, d)
		if out.Digit(pos) != d {
			t.Fatalf("WithDigit(%d,%x): digit = %x", pos, d, out.Digit(pos))
		}
		for i := 0; i < Digits; i++ {
			if i != pos && out.Digit(i) != id.Digit(i) {
				t.Fatalf("WithDigit(%d,%x) disturbed digit %d", pos, d, i)
			}
		}
	}
}

func TestCommonPrefixLen(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"00000000000000000000000000000000", "00000000000000000000000000000000", Digits},
		{"00000000000000000000000000000000", "80000000000000000000000000000000", 0},
		{"abc00000000000000000000000000000", "abd00000000000000000000000000000", 2},
		{"abcd0000000000000000000000000000", "abcd0000000000000000000000000001", 31},
	}
	for _, tc := range tests {
		a, b := MustHex(tc.a), MustHex(tc.b)
		if got := CommonPrefixLen(a, b); got != tc.want {
			t.Errorf("CommonPrefixLen(%s,%s) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := CommonPrefixLen(b, a); got != tc.want {
			t.Errorf("CommonPrefixLen(%s,%s) = %d, want %d (symmetry)", tc.b, tc.a, got, tc.want)
		}
	}
}

func TestCommonPrefixLenProperty(t *testing.T) {
	f := func(a, b [16]byte) bool {
		x, y := ID(a), ID(b)
		l := CommonPrefixLen(x, y)
		for i := 0; i < l; i++ {
			if x.Digit(i) != y.Digit(i) {
				return false
			}
		}
		if l < Digits && x.Digit(l) == y.Digit(l) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(a, b [16]byte) bool {
		x, y := ID(a), ID(b)
		return Distance(x, y) == Distance(y, x) && RingDistance(x, y) == RingDistance(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRingDistanceWraps(t *testing.T) {
	almostMax := MustHex("ffffffffffffffffffffffffffffffff")
	one := FromUint64(1)
	d := RingDistance(almostMax, one)
	if got := FromUint64(2); d != got {
		t.Fatalf("ring distance across wrap = %s, want %s", d, got)
	}
}

func TestCloserToKeyTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	key := Random(rng)
	a, b := Random(rng), Random(rng)
	if a == b {
		t.Skip("collision")
	}
	// Exactly one of the two must be closer (strict total order).
	if CloserToKey(key, a, b) == CloserToKey(key, b, a) {
		t.Fatalf("CloserToKey not antisymmetric for %s/%s", a.Short(), b.Short())
	}
}

func TestFromHexErrors(t *testing.T) {
	if _, err := FromHex("zz"); err == nil {
		t.Error("FromHex(zz) should fail")
	}
	if _, err := FromHex("00112233445566778899aabbccddeeff00"); err == nil {
		t.Error("FromHex(too long) should fail")
	}
	id, err := FromHex("f")
	if err != nil {
		t.Fatalf("FromHex(f): %v", err)
	}
	if id != FromUint64(0xf) {
		t.Errorf("FromHex(f) = %s", id)
	}
}

func TestFromKeyDeterministic(t *testing.T) {
	if FromKey("cpu_util") != FromKey("cpu_util") {
		t.Error("FromKey not deterministic")
	}
	if FromKey("a") == FromKey("b") {
		t.Error("FromKey collision on distinct keys")
	}
}

func TestFraction(t *testing.T) {
	if f := Fraction(Zero); f != 0 {
		t.Errorf("Fraction(0) = %v", f)
	}
	half := MustHex("80000000000000000000000000000000")
	if f := Fraction(half); f < 0.499 || f > 0.501 {
		t.Errorf("Fraction(2^127) = %v, want 0.5", f)
	}
}

func TestCmpAgainstStrings(t *testing.T) {
	f := func(a, b [16]byte) bool {
		x, y := ID(a), ID(b)
		want := 0
		if x.String() < y.String() {
			want = -1
		} else if x.String() > y.String() {
			want = 1
		}
		return Cmp(x, y) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
