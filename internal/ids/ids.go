// Package ids implements the 128-bit identifier space used by the Moara
// overlay: node and key identifiers, prefix arithmetic over configurable
// digit widths, MD5-based key derivation for group attributes, and ring
// distance metrics.
//
// Identifiers are 128-bit unsigned integers in big-endian byte order.
// Pastry-style routing interprets an ID as a string of digits, each
// DigitBits wide (default 4, i.e. hexadecimal digits).
package ids

import (
	"crypto/md5"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/bits"
)

// Bits is the total number of bits in an identifier.
const Bits = 128

// Bytes is the identifier size in bytes.
const Bytes = Bits / 8

// DigitBits is the width of one routing digit in bits (Pastry's "b"
// parameter). 4 means IDs are routed one hex digit at a time.
const DigitBits = 4

// Digits is the number of routing digits in an identifier.
const Digits = Bits / DigitBits

// Radix is the number of distinct digit values (2^DigitBits).
const Radix = 1 << DigitBits

// ID is a 128-bit identifier in big-endian byte order.
type ID [Bytes]byte

// Zero is the all-zero identifier.
var Zero ID

// FromKey derives the identifier for a string key (e.g. a group
// attribute name) by hashing it with MD5, exactly as the paper's
// prototype does.
func FromKey(key string) ID {
	return ID(md5.Sum([]byte(key)))
}

// FromUint64 builds an identifier whose low 64 bits are v. Useful in
// tests where readable IDs matter.
func FromUint64(v uint64) ID {
	var id ID
	binary.BigEndian.PutUint64(id[8:], v)
	return id
}

// FromHex parses a hexadecimal identifier. Short strings are left-padded
// with zeros, so "f0" parses as 0x00..00f0.
func FromHex(s string) (ID, error) {
	if len(s) > 2*Bytes {
		return Zero, fmt.Errorf("ids: hex string %q longer than %d digits", s, 2*Bytes)
	}
	if len(s)%2 == 1 {
		s = "0" + s
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return Zero, fmt.Errorf("ids: parse %q: %w", s, err)
	}
	var id ID
	copy(id[Bytes-len(raw):], raw)
	return id, nil
}

// MustHex is FromHex that panics on malformed input. For tests and
// constants only.
func MustHex(s string) ID {
	id, err := FromHex(s)
	if err != nil {
		panic(err)
	}
	return id
}

// String renders the identifier as 32 hex digits.
func (id ID) String() string {
	return hex.EncodeToString(id[:])
}

// Short renders the first 8 hex digits, for compact logging.
func (id ID) Short() string {
	return hex.EncodeToString(id[:4])
}

// IsZero reports whether the identifier is all zeros.
func (id ID) IsZero() bool {
	return id == Zero
}

// Digit returns the i-th routing digit (0 is the most significant).
func (id ID) Digit(i int) int {
	if i < 0 || i >= Digits {
		panic(fmt.Sprintf("ids: digit index %d out of range [0,%d)", i, Digits))
	}
	byteIdx := i * DigitBits / 8
	// With DigitBits=4 there are exactly two digits per byte.
	if i%2 == 0 {
		return int(id[byteIdx] >> 4)
	}
	return int(id[byteIdx] & 0x0f)
}

// WithDigit returns a copy of the identifier with the i-th routing digit
// replaced by d.
func (id ID) WithDigit(i, d int) ID {
	if d < 0 || d >= Radix {
		panic(fmt.Sprintf("ids: digit value %d out of range [0,%d)", d, Radix))
	}
	byteIdx := i * DigitBits / 8
	out := id
	if i%2 == 0 {
		out[byteIdx] = byte(d<<4) | (out[byteIdx] & 0x0f)
	} else {
		out[byteIdx] = (out[byteIdx] & 0xf0) | byte(d)
	}
	return out
}

// CommonPrefixLen returns the number of leading routing digits shared by
// a and b. It is Digits when a == b.
func CommonPrefixLen(a, b ID) int {
	ua, ub := toU128(a), toU128(b)
	if x := ua.hi ^ ub.hi; x != 0 {
		return bits.LeadingZeros64(x) / DigitBits
	}
	if x := ua.lo ^ ub.lo; x != 0 {
		return (64 + bits.LeadingZeros64(x)) / DigitBits
	}
	return Digits
}

// Cmp compares a and b as unsigned big-endian integers, returning -1, 0,
// or 1.
func Cmp(a, b ID) int {
	return toU128(a).cmp(toU128(b))
}

// Less reports a < b in unsigned integer order.
func Less(a, b ID) bool { return toU128(a).cmp(toU128(b)) < 0 }

// Distance returns the absolute difference |a-b| interpreted as 128-bit
// unsigned integers (linear, not ring, distance).
func Distance(a, b ID) ID {
	ua, ub := toU128(a), toU128(b)
	if ua.cmp(ub) < 0 {
		ua, ub = ub, ua
	}
	return ua.sub(ub).id()
}

// RingDistance returns the minimal distance between a and b around the
// 2^128 ring: min(|a-b|, 2^128 - |a-b|).
func RingDistance(a, b ID) ID {
	return ringDistU(toU128(a), toU128(b)).id()
}

// ringDistU is RingDistance in the uint64-pair domain (the routing hot
// path compares distances far more often than it materializes them).
func ringDistU(ua, ub u128) u128 {
	if ua.cmp(ub) < 0 {
		ua, ub = ub, ua
	}
	d := ua.sub(ub)
	nd := u128{}.sub(d)
	if nd.cmp(d) < 0 {
		return nd
	}
	return d
}

// GapCW returns the clockwise distance from a to b on the 2^128 ring:
// (b - a) mod 2^128.
func GapCW(a, b ID) ID {
	return toU128(b).sub(toU128(a)).id()
}

// Gap is a ring distance kept in native-integer form for
// comparison-heavy data structures (leaf-set ordering): comparing two
// Gaps is two word compares, with no byte marshalling.
type Gap struct{ Hi, Lo uint64 }

// GapCWNative is GapCW without materializing an ID.
func GapCWNative(a, b ID) Gap {
	d := toU128(b).sub(toU128(a))
	return Gap{d.hi, d.lo}
}

// Less orders gaps as 128-bit unsigned integers.
func (a Gap) Less(b Gap) bool {
	if a.Hi != b.Hi {
		return a.Hi < b.Hi
	}
	return a.Lo < b.Lo
}

// Fraction maps the gap to [0,1), like Fraction on an ID.
func (a Gap) Fraction() float64 {
	return float64(a.Hi) / (1 << 63) / 2
}

// CloserToKey reports whether a is strictly closer to key than b under
// the ring metric, breaking ties toward the numerically smaller ID so
// that "closest node to a key" is always unique.
func CloserToKey(key, a, b ID) bool {
	uk, ua, ub := toU128(key), toU128(a), toU128(b)
	switch ringDistU(uk, ua).cmp(ringDistU(uk, ub)) {
	case -1:
		return true
	case 1:
		return false
	default:
		return ua.cmp(ub) < 0
	}
}

// u128 is an identifier in native-integer form; the comparison-heavy
// ring arithmetic stays in this domain to avoid byte marshalling.
type u128 struct{ hi, lo uint64 }

func toU128(a ID) u128 {
	return u128{binary.BigEndian.Uint64(a[:8]), binary.BigEndian.Uint64(a[8:])}
}

func (a u128) id() ID { return join(a.hi, a.lo) }

func (a u128) cmp(b u128) int {
	switch {
	case a.hi < b.hi:
		return -1
	case a.hi > b.hi:
		return 1
	case a.lo < b.lo:
		return -1
	case a.lo > b.lo:
		return 1
	}
	return 0
}

// sub returns a-b mod 2^128.
func (a u128) sub(b u128) u128 {
	lo, borrow := bits.Sub64(a.lo, b.lo, 0)
	hi, _ := bits.Sub64(a.hi, b.hi, borrow)
	return u128{hi, lo}
}

func split(a ID) (hi, lo uint64) {
	return binary.BigEndian.Uint64(a[:8]), binary.BigEndian.Uint64(a[8:])
}

func join(hi, lo uint64) ID {
	var id ID
	binary.BigEndian.PutUint64(id[:8], hi)
	binary.BigEndian.PutUint64(id[8:], lo)
	return id
}

// Fraction maps the identifier to [0,1): the value of id divided by
// 2^128, with 64-bit precision. Useful for ring-density estimates.
func Fraction(id ID) float64 {
	hi, _ := split(id)
	return float64(hi) / (1 << 63) / 2
}

// RandSource is the subset of math/rand functionality the ids package
// needs; it lets callers inject deterministic generators.
type RandSource interface {
	Uint64() uint64
}

// Random draws a uniformly random identifier from src.
func Random(src RandSource) ID {
	return join(src.Uint64(), src.Uint64())
}
