package moara

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/moara/moara/internal/core"
)

// seedSliceCluster populates a cluster with a PlanetLab-ish layout:
// every node carries a slice label, a mem_util reading, and an apache
// flag, and returns the per-node values for centralized recomputation.
func seedSliceCluster(c *SimCluster, nSlices int) (slices []string, mem []float64, apache []bool) {
	slices = make([]string, c.Size())
	mem = make([]float64, c.Size())
	apache = make([]bool, c.Size())
	for i := 0; i < c.Size(); i++ {
		slices[i] = fmt.Sprintf("cs%d", 100+i%nSlices)
		mem[i] = math.Mod(float64(i)*13.7, 100)
		apache[i] = i%2 == 0
		c.SetAttr(i, "slice", Str(slices[i]))
		c.SetAttr(i, "mem_util", Float(mem[i]))
		c.SetAttr(i, "apache", Bool(apache[i]))
	}
	return slices, mem, apache
}

// TestGroupedQueryMatchesCentralizedRecompute is the correctness
// acceptance check: per-key results of a grouped query over a predicate
// exactly match a centralized recompute over the same attribute
// snapshot.
func TestGroupedQueryMatchesCentralizedRecompute(t *testing.T) {
	c := NewSimCluster(128, WithSeed(11))
	slices, mem, apache := seedSliceCluster(c, 5)

	wantSum := map[string]float64{}
	wantN := map[string]int64{}
	var contributors int64
	for i := 0; i < c.Size(); i++ {
		if !apache[i] {
			continue
		}
		wantSum[slices[i]] += mem[i]
		wantN[slices[i]]++
		contributors++
	}

	res, err := c.Query(0, "avg(mem_util) group by slice where apache = true")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != len(wantSum) {
		t.Fatalf("got %d groups %v, want %d", len(res.Groups), res.Groups, len(wantSum))
	}
	for k, want := range wantSum {
		got, ok := res.Groups[k].Value.AsFloat()
		if !ok {
			t.Fatalf("group %s missing numeric result", k)
		}
		if wantAvg := want / float64(wantN[k]); math.Abs(got-wantAvg) > 1e-9 {
			t.Errorf("group %s = %v, want %v", k, got, wantAvg)
		}
	}
	if res.Contributors != contributors {
		t.Errorf("contributors = %d, want %d", res.Contributors, contributors)
	}
	if res.Truncated {
		t.Error("no spill expected at 5 keys")
	}
	if res.Stats.GroupKeys != len(wantSum) || res.Stats.GroupBy != "slice" {
		t.Errorf("stats = %+v", res.Stats)
	}

	// The grand total equals the ungrouped answer over the same set.
	scalar, err := c.Query(0, "avg(mem_util) where apache = true")
	if err != nil {
		t.Fatal(err)
	}
	sg, _ := scalar.Agg.Value.AsFloat()
	gg, _ := res.Agg.Value.AsFloat()
	if math.Abs(sg-gg) > 1e-9 {
		t.Errorf("grouped total %v != scalar %v", gg, sg)
	}
}

// TestGroupedQueryIsOneDissemination is the cost acceptance check: the
// grouped form costs about as many Moara messages as the ungrouped
// form — per-key merging happens inside the one tree pass, not as G
// separate queries.
func TestGroupedQueryIsOneDissemination(t *testing.T) {
	const nSlices = 7
	c := NewSimCluster(256, WithSeed(17))
	seedSliceCluster(c, nSlices)

	// Warm so both measurements see the same settled tree.
	for r := 0; r < 3; r++ {
		if _, err := c.Query(0, "avg(mem_util) where apache = true"); err != nil {
			t.Fatal(err)
		}
		c.RunFor(2 * time.Second)
	}

	c.ResetMessageCounter()
	if _, err := c.Query(0, "avg(mem_util) where apache = true"); err != nil {
		t.Fatal(err)
	}
	scalarMsgs := c.Messages()

	c.ResetMessageCounter()
	res, err := c.Query(0, "avg(mem_util) group by slice where apache = true")
	if err != nil {
		t.Fatal(err)
	}
	groupedMsgs := c.Messages()

	if len(res.Groups) != nSlices {
		t.Fatalf("groups = %d, want %d", len(res.Groups), nSlices)
	}
	if scalarMsgs == 0 {
		t.Fatal("scalar query produced no messages")
	}
	// "~equal": allow slack for adaptation noise between the two runs,
	// but nowhere near the G× cost of one query per slice.
	if groupedMsgs > scalarMsgs+scalarMsgs/4+4 {
		t.Fatalf("grouped = %d msgs vs scalar = %d; keyed merge should ride one dissemination",
			groupedMsgs, scalarMsgs)
	}
	if groupedMsgs >= int64(nSlices)*scalarMsgs/2 {
		t.Fatalf("grouped = %d msgs looks like %d separate queries (scalar = %d)",
			groupedMsgs, nSlices, scalarMsgs)
	}
}

// TestGroupedQueryCapSpill drives the high-cardinality path end to end:
// with more keys than MaxGroupKeys, results truncate into <other> while
// the grand total stays exact.
func TestGroupedQueryCapSpill(t *testing.T) {
	c := NewSimCluster(64, WithSeed(23), WithNodeConfig(core.Config{MaxGroupKeys: 4}))
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "host", Str(fmt.Sprintf("h%03d", i)))
		c.SetAttr(i, "v", Int(1))
	}
	res, err := c.Query(0, "sum(v) group by host")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("64 keys with cap 4 must truncate")
	}
	if res.Stats.GroupKeys > 4 {
		t.Fatalf("held keys = %d, cap 4", res.Stats.GroupKeys)
	}
	if _, ok := res.Groups["<other>"]; !ok {
		t.Fatalf("expected <other> bucket in %v", res.Groups)
	}
	if got, _ := res.Agg.Value.AsInt(); got != 64 {
		t.Fatalf("grand total = %d, want 64 (spill must not lose mass)", got)
	}
}

// TestGroupedMonitorSeries checks grouped continuous monitoring plus the
// GroupSeries pivot. Monitoring is a standing query now: the earliest
// epochs are marked ColdStart while the contribution pipeline fills, so
// the per-key assertions apply to warm samples only.
func TestGroupedMonitorSeries(t *testing.T) {
	c := NewSimCluster(32, WithSeed(29))
	seedSliceCluster(c, 4)
	samples, err := c.Monitor(0, "count(*) group by slice", time.Second, 8)
	if err != nil {
		t.Fatal(err)
	}
	series := GroupSeries(samples)
	if len(series) != 4 {
		t.Fatalf("series keys = %d, want 4", len(series))
	}
	warm := 0
	for r, s := range samples {
		if s.ColdStart {
			continue
		}
		warm++
		for k, vals := range series {
			if got, _ := vals[r].AsInt(); got != 8 {
				t.Fatalf("%s round %d = %v, want 8", k, r, vals[r])
			}
		}
	}
	if warm < 3 {
		t.Fatalf("warm samples = %d, want >= 3 of 8", warm)
	}
}

// TestFormatGroups checks the display helper's ordering and shape.
func TestFormatGroups(t *testing.T) {
	c := NewSimCluster(16, WithSeed(31))
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "dc", Str([]string{"east", "west"}[i%2]))
		c.SetAttr(i, "v", Int(1))
	}
	res, err := c.Query(0, "count(*) group by dc")
	if err != nil {
		t.Fatal(err)
	}
	lines := FormatGroups(res)
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "east=") || !strings.HasPrefix(lines[1], "west=") {
		t.Fatalf("lines = %v", lines)
	}
}
