// PlanetLab: slice monitoring over a simulated wide-area federation —
// the paper's §2 federated-infrastructure scenario. 200 nodes with
// heavy-tailed WAN latencies host slices whose sizes follow the
// Fig. 2(a) distribution; we run per-slice and cross-slice queries and
// report wide-area latencies.
//
//	go run ./examples/planetlab
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/moara/moara"
)

func main() {
	const n = 200
	const nSlices = 12
	c := moara.NewSimCluster(n, moara.WithWANModel(), moara.WithSeed(11))
	rng := rand.New(rand.NewSource(11))

	// Assign nodes to slices with a skewed distribution (most slices
	// are small — the paper's Fig. 2(a) observation).
	sliceSize := []int{120, 70, 40, 25, 15, 10, 8, 6, 5, 4, 3, 2}
	assigned := make([][]bool, nSlices)
	for s := range assigned {
		assigned[s] = make([]bool, n)
		for _, i := range rng.Perm(n)[:sliceSize[s]] {
			assigned[s][i] = true
		}
	}
	for i := 0; i < n; i++ {
		for s := 0; s < nSlices; s++ {
			c.SetAttr(i, fmt.Sprintf("slice_%d", s), moara.Bool(assigned[s][i]))
		}
		c.SetAttr(i, "cpu_util", moara.Float(rng.Float64()*100))
		c.SetAttr(i, "free_disk_gb", moara.Int(int64(rng.Intn(500))))
		c.SetAttr(i, "org", moara.Str([]string{"uiuc", "hp", "mit", "epfl"}[rng.Intn(4)]))
	}

	run := func(q string) {
		res, err := c.Query(0, q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		fmt.Printf("%-76s => %-18s (%7.0f ms, %d nodes)\n",
			q, res.Agg,
			float64(res.Stats.TotalTime.Microseconds())/1000,
			res.Contributors)
	}

	fmt.Printf("Slice monitoring on a %d-node simulated wide-area federation:\n\n", n)

	// Basic per-slice queries (the CoMon/Ganglia use case, §2).
	run("count(*) where slice_1 = true")
	run("avg(cpu_util) where slice_1 = true")
	run("top3(cpu_util) where slice_0 = true")

	// Intersection: nodes common to two slices — the optimizer probes
	// both trees and queries the cheaper (smaller) one.
	run("count(*) where slice_0 = true and slice_4 = true")

	// Union: free disk across a set of small slices.
	run("sum(free_disk_gb) where slice_8 = true or slice_9 = true or slice_10 = true")

	// Hot-node hunting: slices with overloaded machines.
	run("count(*) where slice_0 = true and cpu_util > 90")

	// Repeated monitoring of a small slice stays cheap: after the
	// first (broadcast) query the group tree prunes to O(slice size).
	run("count(*) where slice_9 = true") // cold: builds the tree
	c.ResetMessageCounter()
	run("count(*) where slice_9 = true") // warmed
	fmt.Printf("\nwarmed 4-node slice query cost: %d messages (global broadcast would be ~%d)\n",
		c.Messages(), 2*n)
}
