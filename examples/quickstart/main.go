// Quickstart: boot a 64-node simulated Moara deployment, populate
// monitoring attributes, and run basic, group, and composite queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/moara/moara"
)

func main() {
	// A 64-node cluster on the simulated network (virtual time, so it
	// boots instantly and latencies below are simulated latencies).
	c := moara.NewSimCluster(64)

	// Each node runs an agent that publishes (attribute, value) pairs.
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "cpu_util", moara.Float(float64((i*37)%100)))
		c.SetAttr(i, "mem_free_mb", moara.Int(int64(512+(i*131)%7680)))
		c.SetAttr(i, "apache", moara.Bool(i%2 == 0))
		c.SetAttr(i, "service_x", moara.Bool(i%4 == 0))
	}

	queries := []string{
		// Global aggregation (no group predicate).
		"avg(cpu_util)",
		// Simple group query: one group tree, pruned adaptively.
		"count(*) where apache = true",
		// Intersection: the optimizer probes both groups and queries
		// only the cheaper one.
		"max(cpu_util) where service_x = true and apache = true",
		// Union with a numeric range.
		"sum(mem_free_mb) where service_x = true or cpu_util < 10",
		// Top-k over a group.
		"top3(cpu_util) where apache = true",
	}
	for _, q := range queries {
		res, err := c.Query(0, q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		fmt.Printf("%-58s => %s", q, res.Agg)
		fmt.Printf("   [%d contributors, %.1fms, cover %v]\n",
			res.Contributors,
			float64(res.Stats.TotalTime.Microseconds())/1000,
			res.Stats.Chosen)
	}

	// Repeat a group query: the tree has pruned, so the message cost
	// drops far below a broadcast.
	c.ResetMessageCounter()
	if _, err := c.Query(0, "count(*) where service_x = true"); err != nil {
		log.Fatal(err)
	}
	first := c.Messages()
	c.ResetMessageCounter()
	if _, err := c.Query(0, "count(*) where service_x = true"); err != nil {
		log.Fatal(err)
	}
	second := c.Messages()
	fmt.Printf("\ngroup-tree adaptation: first query %d msgs, warmed query %d msgs (broadcast would be ~%d)\n",
		first, second, 2*c.Size())
}
