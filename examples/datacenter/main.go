// Datacenter: the paper's Fig. 1 management queries running against a
// simulated virtualized enterprise — floors, clusters, racks, VMs,
// services, firewalls — on the Emulab-style LAN model.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/moara/moara"
)

func main() {
	const n = 500
	c := moara.NewSimCluster(n, moara.WithLANModel(), moara.WithSeed(7))
	rng := rand.New(rand.NewSource(7))

	// Populate the virtualized enterprise: every node is a VM host.
	for i := 0; i < n; i++ {
		floor := i / 125
		clusterID := i / 25
		rack := i / 5
		c.SetAttr(i, "floor", moara.Str(fmt.Sprintf("F%d", floor)))
		c.SetAttr(i, "cluster", moara.Str(fmt.Sprintf("C%d", clusterID)))
		c.SetAttr(i, "rack", moara.Str(fmt.Sprintf("R%d", rack)))
		c.SetAttr(i, "util", moara.Float(rng.Float64()*100))
		c.SetAttr(i, "app_x_version", moara.Int(int64(1+rng.Intn(2))))
		c.SetAttr(i, "vmware", moara.Bool(rng.Intn(3) == 0))
		c.SetAttr(i, "firewall", moara.Bool(rng.Intn(10) != 0))
		c.SetAttr(i, "esx", moara.Bool(rng.Intn(4) == 0))
		c.SetAttr(i, "sygate", moara.Bool(rng.Intn(5) == 0))
		c.SetAttr(i, "service_x", moara.Bool(rng.Intn(6) == 0))
		c.SetAttr(i, "svc_x_resp_ms", moara.Float(5+rng.Float64()*200))
		c.SetAttr(i, "up", moara.Bool(rng.Intn(50) != 0))
	}

	// The Fig. 1 task table, expressed in the query language.
	queries := []struct{ task, q string }{
		{"Resource allocation", "avg(util) where floor = F1"},
		{"Resource allocation", "avg(util) where cluster = C3"},
		{"Resource allocation", "avg(util) where rack = R40"},
		{"Resource allocation", "count(*) where cluster = C7"},
		{"VM migration", "avg(util) where app_x_version = 1 or app_x_version = 2"},
		{"VM migration", "enum(rack) where app_x_version = 1 and vmware = true and rack = R2"},
		{"Auditing/Security", "count(*) where firewall = true"},
		{"Auditing/Security", "count(*) where esx = true and sygate = true"},
		{"Dashboard", "max(svc_x_resp_ms) where service_x = true"},
		{"Dashboard", "count(*) where up = true and service_x = true"},
		{"Patch management", "enum(app_x_version) where service_x = true and cluster = C0"},
		{"Patch management", "count(*) where cluster = C2 and service_x = true and app_x_version = 2"},
	}
	fmt.Printf("Fig. 1 management queries on a %d-VM simulated datacenter (LAN model):\n\n", n)
	for _, item := range queries {
		res, err := c.Query(0, item.q)
		if err != nil {
			log.Fatalf("%s: %v", item.q, err)
		}
		answer := res.Agg.String()
		if len(answer) > 44 {
			answer = answer[:41] + "..."
		}
		fmt.Printf("%-18s %-72s => %-44s (%5.1f ms)\n",
			item.task, item.q, answer,
			float64(res.Stats.TotalTime.Microseconds())/1000)
	}
}
