package moara

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// renderSample renders every observable field of a sample, so stream
// comparisons are byte-exact (Epoch, RootEpoch, timing, coverage, and
// the full aggregate — not just the headline value).
func renderSample(s Sample) string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch=%d root=%d at=%s lag=%s cold=%v contrib=%d expected=%g agg=%s",
		s.Epoch, s.RootEpoch, s.At, s.Lag, s.ColdStart, s.Contributors, s.Expected, s.Result.Agg)
	if s.Result.Groups != nil {
		for _, l := range FormatGroups(s.Result) {
			fmt.Fprintf(&b, " %s", l)
		}
	}
	if s.Err != nil {
		fmt.Fprintf(&b, " err=%v", s.Err)
	}
	return b.String()
}

func renderStream(samples []Sample) string {
	lines := make([]string, len(samples))
	for i, s := range samples {
		lines[i] = renderSample(s)
	}
	return strings.Join(lines, "\n")
}

func seedEquivAttrs(c *SimCluster) {
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "cpu", Float(float64((i*37)%100)))
		c.SetAttr(i, "slice", Str(fmt.Sprintf("s%d", i%3)))
		c.SetAttr(i, "apache", Bool(i%2 == 0))
	}
}

// TestSharedStreamByteIdentical is the subsumption equivalence
// guarantee: syntactic variants of one standing query, all served from
// a single shared in-tree subscription, deliver streams byte-identical
// to a direct (service-less) installation of the same query on an
// identically-seeded cluster.
func TestSharedStreamByteIdentical(t *testing.T) {
	const (
		n      = 48
		seed   = 11
		window = 12 * time.Second
	)
	query := "avg(cpu) where apache = true group by slice every 2s"
	variants := []string{
		query,
		"avg( cpu )  where  apache = true group by slice every 2000ms",
		"avg(cpu) where apache = true and apache = true group by slice every 2s",
	}

	// Direct run: one subscription, no service in the path. The install
	// goes through the service with sharing trivially (single
	// subscriber) disabled semantics? No — to keep the baseline pure it
	// subscribes straight on the per-node client, with the normalized
	// text the service would install.
	direct := NewSimCluster(n, WithSeed(seed))
	seedEquivAttrs(direct)
	var directSamples []Sample
	dsub, err := direct.Client(0).Subscribe(context.Background(), query,
		func(s Sample) { directSamples = append(directSamples, s) })
	if err != nil {
		t.Fatal(err)
	}
	direct.RunFor(window)
	if err := dsub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if len(directSamples) == 0 {
		t.Fatal("direct run produced no samples")
	}

	// Service run: an identically-seeded cluster, three variant
	// subscriptions through the service — one install, three streams.
	shared := NewSimCluster(n, WithSeed(seed))
	seedEquivAttrs(shared)
	svc := NewService(shared.Client(0), ServiceOptions{})
	streams := make([][]Sample, len(variants))
	subs := make([]Sub, len(variants))
	for i, v := range variants {
		i := i
		subs[i], err = svc.Subscribe(context.Background(), v,
			func(s Sample) { streams[i] = append(streams[i], s) })
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
	}
	if st := svc.Stats(); st.Installs != 1 || st.Attaches != 2 {
		t.Fatalf("service stats = %+v, want 1 install / 2 attaches", st)
	}
	shared.RunFor(window)
	for i, sub := range subs {
		if err := sub.Unsubscribe(); err != nil {
			t.Fatalf("unsubscribe %d: %v", i, err)
		}
	}

	want := renderStream(directSamples)
	for i := range variants {
		if got := renderStream(streams[i]); got != want {
			t.Errorf("variant %d stream differs from direct run:\ndirect:\n%s\nvariant:\n%s",
				i, want, got)
		}
	}
}

// TestIndependentRunsByteIdentical is the determinism baseline the
// subsumption test leans on: two identically-seeded clusters running
// the same subscription deliver identical streams.
func TestIndependentRunsByteIdentical(t *testing.T) {
	run := func() string {
		c := NewSimCluster(32, WithSeed(5))
		seedEquivAttrs(c)
		var samples []Sample
		sub, err := c.Client(0).Subscribe(context.Background(), "sum(cpu) every 1s",
			func(s Sample) { samples = append(samples, s) })
		if err != nil {
			t.Fatal(err)
		}
		c.RunFor(6 * time.Second)
		sub.Unsubscribe()
		return renderStream(samples)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identically-seeded runs diverge:\n%s\n---\n%s", a, b)
	}
}

// TestCachedOneShotIdenticalModuloAge proves a cache hit is the same
// answer — every field — except the staleness stamp.
func TestCachedOneShotIdenticalModuloAge(t *testing.T) {
	c := NewSimCluster(32, WithSeed(3))
	seedEquivAttrs(c)
	svc := NewService(c.Client(0), ServiceOptions{CacheTTL: time.Minute})
	ctx := context.Background()

	fresh, err := svc.Query(ctx, "avg(cpu) group by slice")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cached || fresh.Age != 0 {
		t.Fatalf("fresh answer stamped cached: Cached=%v Age=%v", fresh.Cached, fresh.Age)
	}
	c.RunFor(2 * time.Second) // advance the virtual clock
	cached, err := svc.Query(ctx, "avg( cpu ) group by slice")
	if err != nil {
		t.Fatal(err)
	}
	if !cached.Cached {
		t.Fatal("second query missed the cache")
	}
	if cached.Age != 2*time.Second {
		t.Fatalf("Age = %v, want the 2s the virtual clock advanced", cached.Age)
	}
	cached.Cached = false
	cached.Age = 0
	if !reflect.DeepEqual(fresh, cached) {
		t.Fatalf("cached answer differs beyond the stamp:\nfresh:  %+v\ncached: %+v", fresh, cached)
	}
}

// TestServiceBufferedHandoffNoDeadlock wedges a subscriber callback
// behind a channel nobody reads until the pump finishes. With
// synchronous fan-out that callback would run on the event-loop
// goroutine and deadlock RunFor; the service's buffered hand-off
// (Buffer > 0) keeps the pump live by dropping the stalled
// subscriber's oldest samples instead. Run with -race in CI.
func TestServiceBufferedHandoffNoDeadlock(t *testing.T) {
	c := NewSimCluster(24, WithSeed(2))
	seedEquivAttrs(c)
	svc := NewService(c.Client(0), ServiceOptions{Buffer: 2})

	wedge := make(chan Sample) // unbuffered, drained only after the pump
	var delivered atomic.Int64
	sub, err := svc.Subscribe(context.Background(), "count(*) every 1s", func(s Sample) {
		delivered.Add(1)
		wedge <- s
	})
	if err != nil {
		t.Fatal(err)
	}

	pumped := make(chan struct{})
	go func() {
		c.RunFor(15 * time.Second)
		close(pumped)
	}()
	select {
	case <-pumped:
	case <-time.After(60 * time.Second):
		t.Fatal("epoch pump deadlocked behind a wedged subscriber callback")
	}

	// Release the dispatcher and let it hand over what survived the
	// buffer, then detach.
	go func() {
		for range wedge {
		}
	}()
	deadline := time.Now().Add(30 * time.Second)
	for delivered.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no sample ever reached the subscriber")
		}
		time.Sleep(time.Millisecond)
	}
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
}

// TestMonitorClientOverService runs the Monitor helper against the
// service-fronted client, proving the monitoring layer is written
// against the interface, not a concrete deployment.
func TestMonitorClientOverService(t *testing.T) {
	c := NewSimCluster(24, WithSeed(9))
	seedEquivAttrs(c)
	svc := NewService(c.Client(0), ServiceOptions{})
	samples, err := MonitorClient(context.Background(), svc, "count(*)", time.Second, 8, c.RunFor)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 8 {
		t.Fatalf("got %d samples, want 8", len(samples))
	}
	warm := 0
	for _, s := range samples {
		if s.ColdStart {
			continue
		}
		warm++
		if s.Result.Contributors != int64(c.Size()) {
			t.Fatalf("warm epoch %d: contributors = %d, want %d", s.Epoch, s.Result.Contributors, c.Size())
		}
	}
	if warm == 0 {
		t.Fatal("no warm samples in the window")
	}
}
