package moara

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestTypedSentinels proves every branchable failure at the public
// boundary wraps its sentinel, so callers use errors.Is instead of
// message matching.
func TestTypedSentinels(t *testing.T) {
	c := NewSimCluster(16, WithSeed(1))
	ctx := context.Background()

	cases := []struct {
		name string
		err  func() error
		want error
	}{
		{"parse failure", func() error {
			_, err := c.Client(0).Query(ctx, "bogus query text")
			return err
		}, ErrParse},
		{"parse failure via wrapper", func() error {
			_, err := c.Query(0, "also bogus")
			return err
		}, ErrParse},
		{"standing query via Query", func() error {
			_, err := c.Client(0).Query(ctx, "avg(cpu) every 1s")
			return err
		}, ErrStandingOnly},
		{"one-shot via Subscribe", func() error {
			_, err := c.Client(0).Subscribe(ctx, "avg(cpu)", func(Sample) {})
			return err
		}, ErrNotStanding},
		{"one-shot via Subscribe wrapper", func() error {
			_, err := c.Subscribe(0, "avg(cpu)", func(Sample) {})
			return err
		}, ErrNotStanding},
		{"unknown unsubscribe", func() error {
			return c.Unsubscribe(0, SubID{})
		}, ErrUnknownSub},
		{"double unsubscribe", func() error {
			sub, err := c.Client(0).Subscribe(ctx, "count(*) every 1s", func(Sample) {})
			if err != nil {
				return err
			}
			if err := sub.Unsubscribe(); err != nil {
				return err
			}
			return sub.Unsubscribe()
		}, ErrUnknownSub},
		{"dead origin", func() error {
			c.Kill(3)
			defer c.Recover(3)
			_, err := c.Client(3).Query(ctx, "count(*)")
			return err
		}, ErrNoMembers},
		{"dead origin subscribe", func() error {
			c.Kill(4)
			defer c.Recover(4)
			_, err := c.Client(4).Subscribe(ctx, "count(*) every 1s", func(Sample) {})
			return err
		}, ErrNoMembers},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err()
			if err == nil {
				t.Fatal("expected an error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("errors.Is(%v, %v) = false", err, tc.want)
			}
		})
	}
}

func TestErrOverloadFromService(t *testing.T) {
	c := NewSimCluster(8, WithSeed(1))
	svc := NewService(c.Client(0), ServiceOptions{Rate: 1, Burst: 1})
	ctx := WithTenant(context.Background(), "bench")
	if _, err := svc.Query(ctx, "count(*)"); err != nil {
		t.Fatalf("first request shed: %v", err)
	}
	_, err := svc.Query(ctx, "avg(cpu_x)")
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("err = %v, want ErrOverload", err)
	}
	if !IsOverload(err) {
		t.Fatal("IsOverload(err) = false")
	}
}

// TestDeprecatedWrappers pins the legacy SimCluster entry points to the
// Client path: same answers, same stream.
func TestDeprecatedWrappers(t *testing.T) {
	c := NewSimCluster(12, WithSeed(7))
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "load", Int(int64(i)))
	}
	old, err := c.Query(0, "sum(load)")
	if err != nil {
		t.Fatal(err)
	}
	viaClient, err := c.Client(0).Query(context.Background(), "sum(load)")
	if err != nil {
		t.Fatal(err)
	}
	if old.Agg.Value.String() != viaClient.Agg.Value.String() ||
		old.Contributors != viaClient.Contributors {
		t.Fatalf("wrapper answer %v/%d, client answer %v/%d",
			old.Agg.Value, old.Contributors, viaClient.Agg.Value, viaClient.Contributors)
	}

	got := 0
	id, err := c.Subscribe(0, "sum(load) every 1s", func(Sample) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(3 * time.Second)
	if got == 0 {
		t.Fatal("wrapper subscription delivered no samples")
	}
	if err := c.Unsubscribe(0, id); err != nil {
		t.Fatalf("unsubscribe: %v", err)
	}
	if err := c.Unsubscribe(0, id); !errors.Is(err, ErrUnknownSub) {
		t.Fatalf("double wrapper unsubscribe: %v, want ErrUnknownSub", err)
	}
}
